// Benchmarks regenerating the paper's tables and figures (see
// DESIGN.md §4 for the experiment index). Each benchmark runs a
// scaled version of the corresponding experiment and reports
// domain metrics via b.ReportMetric; the cmd/zeninfer and cmd/zeneval
// tools run the full-scale versions.
package zenport_test

import (
	"context"
	"fmt"
	"testing"

	"zenport"
	"zenport/internal/baseline/palmed"
	"zenport/internal/baseline/pmevo"
	"zenport/internal/baseline/uopsinfo"
	"zenport/internal/eval"
	"zenport/internal/lp"
	"zenport/internal/portmodel"
	"zenport/internal/sat"
	"zenport/internal/zensim"
)

var benchDB = zenport.ZenDB()

// blockerKeys are the Table 1 representatives plus improper blockers.
var blockerKeys = []string{
	"add GPR[32], GPR[32]", "vpor XMM, XMM, XMM", "vpaddd XMM, XMM, XMM",
	"vminps XMM, XMM, XMM", "vbroadcastss XMM, XMM", "vpaddsw XMM, XMM, XMM",
	"vaddps XMM, XMM, XMM", "mov GPR[32], MEM[32]", "vpslld XMM, XMM, XMM",
	"vpmuldq XMM, XMM, XMM", "imul GPR[32], GPR[32]", "vroundps XMM, XMM, IMM[8]",
	"vmovd XMM, GPR[32]", "mov MEM[32], GPR[32]", "vmovapd MEM[128], XMM",
}

// pipelineKeys extends blockerKeys with co-members, multi-µop and
// problem schemes — the scaled stand-in for the full scheme list.
var pipelineKeys = append(append([]string(nil), blockerKeys...),
	"sub GPR[32], GPR[32]", "vpand XMM, XMM, XMM", "vpaddb XMM, XMM, XMM",
	"vmaxps XMM, XMM, XMM", "vpshufd XMM, XMM, IMM[8]", "vsubps XMM, XMM, XMM",
	"mov GPR[64], MEM[64]", "vpsrld XMM, XMM, XMM",
	"add GPR[32], MEM[32]", "add MEM[32], GPR[32]", "vpaddd YMM, YMM, YMM",
	"mov GPR[64], GPR[64]", "nop", "cmove GPR[32], GPR[32]",
	"vdivps XMM, XMM, XMM", "bsf GPR[64], GPR[64]",
)

func benchSchemes(keys []string) []zenport.Scheme {
	var out []zenport.Scheme
	for _, k := range keys {
		out = append(out, benchDB.MustGet(k).Scheme)
	}
	return out
}

func benchHarness(seed int64) *zenport.Harness {
	m := zenport.NewZenMachine(benchDB, zenport.SimConfig{Noise: 0.001, Seed: seed})
	return zenport.NewHarness(m)
}

// BenchmarkE1E5FullPipeline regenerates the scheme funnel (§4.1–§4.2
// text), Table 1, Table 2, the §4.3 anomaly exclusions, and the §4.4
// characterization on the scaled scheme set.
func BenchmarkE1E5FullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness(int64(42 + i))
		rep, err := zenport.Infer(h, benchSchemes(pipelineKeys), zenport.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.Classes)), "blocking-classes")
		b.ReportMetric(float64(len(rep.AnomalousBlockers)), "anomalies")
		b.ReportMetric(float64(rep.CEGARRounds), "cegar-rounds")
		b.ReportMetric(float64(rep.Supported()), "covered-schemes")
	}
}

// BenchmarkE4AnomalyUNSAT reproduces the §4.3 imul observation: the
// measured 1.5-cycle mixture admits no port mapping.
func BenchmarkE4AnomalyUNSAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := &zenport.Instance{
			NumPorts: 10, Rmax: 5, Epsilon: 0.02,
			Uops: []zenport.UopSpec{
				{Key: "add", NumPorts: 4},
				{Key: "imul", NumPorts: 1},
			},
		}
		exps := []zenport.MeasuredExp{
			{Exp: zenport.Exp("add"), TInv: 0.25},
			{Exp: zenport.Exp("imul"), TInv: 1.0},
			{Exp: zenport.Experiment{"add": 4, "imul": 1}, TInv: 1.5},
		}
		if _, err := in.FindMapping(exps); err == nil {
			b.Fatal("expected UNSAT")
		}
	}
}

// benchFigure5 runs the Figure 5 evaluation at the given scale and
// returns the model results (PMEvo, Palmed, Ours).
func benchFigure5(b *testing.B, blocks int) []eval.ModelResult {
	b.Helper()
	h := benchHarness(5)
	rep, err := zenport.Infer(h, benchSchemes(pipelineKeys), zenport.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var keys []string
	for key := range rep.Final.Usage {
		if u, _ := rep.Final.Get(key); len(u) > 0 {
			keys = append(keys, key)
		}
	}
	cfg := pmevo.DefaultConfig()
	cfg.Population, cfg.Generations = 30, 40
	pm, err := pmevo.Infer(h, keys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	blockers := map[string]int{}
	for _, cls := range rep.Classes {
		ok := true
		for _, a := range rep.AnomalousBlockers {
			if a == cls.Rep {
				ok = false
			}
		}
		if ok {
			blockers[cls.Rep] = cls.PortCount
		}
	}
	pal, err := palmed.Infer(h, keys, blockers)
	if err != nil {
		b.Fatal(err)
	}
	bs, err := eval.SampleBlocks(h, keys, blocks, 5, 7)
	if err != nil {
		b.Fatal(err)
	}
	res, err := eval.Evaluate(bs, []eval.Predictor{
		&eval.MappingPredictor{Label: "PMEvo", Mapping: pm},
		&eval.FuncPredictor{Label: "Palmed", Fn: pal.IPC},
		&eval.MappingPredictor{Label: "Ours", Mapping: rep.Final, Rmax: 5},
	}, 5.5, 22)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkE6Figure5Metrics regenerates Figure 5(a): MAPE/PCC/τ for
// PMEvo, Palmed, and our mapping.
func BenchmarkE6Figure5Metrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchFigure5(b, 300)
		for _, r := range res {
			b.ReportMetric(r.MAPE*100, r.Name+"-MAPE-%")
		}
		if res[2].MAPE >= res[0].MAPE || res[2].MAPE >= res[1].MAPE {
			b.Fatalf("ours (%.3f) must beat PMEvo (%.3f) and Palmed (%.3f)",
				res[2].MAPE, res[0].MAPE, res[1].MAPE)
		}
	}
}

// BenchmarkE7Figure5Heatmaps regenerates Figure 5(b–d): the
// predicted-vs-measured IPC grids.
func BenchmarkE7Figure5Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchFigure5(b, 300)
		for _, r := range res {
			if r.Heatmap.Total() == 0 {
				b.Fatalf("%s heatmap empty", r.Name)
			}
			b.ReportMetric(float64(r.Heatmap.Total()), r.Name+"-samples")
		}
	}
}

// BenchmarkE8ToyThroughput measures the exact LP-equivalent
// throughput evaluator on the Figure 2 example.
func BenchmarkE8ToyThroughput(b *testing.B) {
	m := zenport.NewMapping(2)
	u1, u2 := zenport.MakePortSet(0, 1), zenport.MakePortSet(1)
	m.Set("add", zenport.Usage{{Ports: u1, Count: 1}})
	m.Set("mul", zenport.Usage{{Ports: u2, Count: 1}})
	m.Set("fma", zenport.Usage{{Ports: u1, Count: 2}, {Ports: u2, Count: 1}})
	e := zenport.Experiment{"mul": 2, "fma": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tp, err := m.InverseThroughput(e); err != nil || tp != 3 {
			b.Fatalf("tp=%v err=%v", tp, err)
		}
	}
}

// BenchmarkCompiledThroughput measures the compiled evaluator on the
// same Figure 2 example as BenchmarkE8ToyThroughput: the
// experiment-keyed (memoized) path and the dense weight-vector path
// the SMT propagator uses. Both must report 0 allocs/op.
func BenchmarkCompiledThroughput(b *testing.B) {
	m := zenport.NewMapping(2)
	u1, u2 := zenport.MakePortSet(0, 1), zenport.MakePortSet(1)
	m.Set("add", zenport.Usage{{Ports: u1, Count: 1}})
	m.Set("mul", zenport.Usage{{Ports: u2, Count: 1}})
	m.Set("fma", zenport.Usage{{Ports: u1, Count: 2}, {Ports: u2, Count: 1}})
	c, err := zenport.CompileMapping(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	e := zenport.Experiment{"mul": 2, "fma": 1}
	b.Run("experiment", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tp, err := c.InverseThroughput(e); err != nil || tp != 3 {
				b.Fatalf("tp=%v err=%v", tp, err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		w, _, err := c.WeightVector(e, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tp := c.InverseThroughputWeights(w); tp != 3 {
				b.Fatalf("tp=%v", tp)
			}
		}
	})
}

// BenchmarkSMTPropagation compares the theory-propagation cost per
// candidate model: the reference path (rebuild the mapping, evaluate
// every experiment through the map-keyed evaluator) against the
// compiled propagator (in-place µop retargeting, dense vectors, zero
// allocations).
func BenchmarkSMTPropagation(b *testing.B) {
	keys := []string{"a", "b", "c", "d", "e", "f"}
	var specs []zenport.UopSpec
	for i, k := range keys {
		specs = append(specs, zenport.UopSpec{Key: k})
		if i%2 == 0 {
			specs = append(specs, zenport.UopSpec{Key: k})
		}
	}
	in := &zenport.Instance{NumPorts: 10, Rmax: 5, Epsilon: 0.02, Uops: specs}
	var exps []zenport.MeasuredExp
	for i, k := range keys {
		exps = append(exps,
			zenport.MeasuredExp{Exp: zenport.Exp(k), TInv: 1},
			zenport.MeasuredExp{Exp: zenport.Experiment{k: 4, keys[(i+1)%len(keys)]: 1}, TInv: 2})
	}
	// Deterministic candidate port sets per iteration, so both legs
	// walk the same sequence of models.
	cand := func(i, u int) portmodel.PortSet {
		return portmodel.PortSet(1)<<uint((i+u)%10) | portmodel.PortSet(1)<<uint((i+2*u+3)%10)
	}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			usage := make(map[string]portmodel.Usage, len(keys))
			for u, sp := range specs {
				usage[sp.Key] = append(usage[sp.Key], portmodel.Uop{Ports: cand(i, u), Count: 1})
			}
			m := portmodel.NewMapping(10)
			for k, us := range usage {
				m.Set(k, us)
			}
			viol := 0
			for _, me := range exps {
				t, err := m.InverseThroughputBounded(me.Exp, 5)
				if err != nil {
					b.Fatal(err)
				}
				tol := (0.02 + me.Slack) * float64(me.Exp.Len())
				if t > me.TInv+tol || t < me.TInv-tol {
					viol++
				}
			}
			if viol == 0 {
				b.Fatal("expected violations under random candidates")
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		prop, err := in.NewPropagator(exps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for u := range specs {
				prop.SetUopPorts(u, cand(i, u))
			}
			if prop.Violations() == 0 {
				b.Fatal("expected violations under random candidates")
			}
		}
	})
}

// BenchmarkE9FindOtherToy measures the Figure 4 distinguishing-
// experiment search.
func BenchmarkE9FindOtherToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := &zenport.Instance{
			NumPorts: 2, Epsilon: 0.02,
			Uops: []zenport.UopSpec{{Key: "iA", NumPorts: 1}, {Key: "iB", NumPorts: 1}},
		}
		exps := []zenport.MeasuredExp{
			{Exp: zenport.Exp("iA"), TInv: 1},
			{Exp: zenport.Exp("iB"), TInv: 1},
		}
		m1, err := in.FindMapping(exps)
		if err != nil {
			b.Fatal(err)
		}
		other, err := in.FindOtherMapping(exps, m1, 2, 4, 50)
		if err != nil || other == nil {
			b.Fatalf("other=%v err=%v", other, err)
		}
	}
}

// BenchmarkE11UopsInfoBaseline runs the original uops.info algorithm
// against the Intel-like counter mode (§2.3).
func BenchmarkE11UopsInfoBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := zenport.NewZenMachine(benchDB, zenport.SimConfig{
			Noise: -1, PerPortCounters: true, DisableAnomalies: true,
		})
		h := zenport.NewHarness(m)
		res, err := uopsinfo.Infer(h, blockerKeys)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Blocking)), "port-sets")
	}
}

// BenchmarkE12BackendAblation compares the analytic (LP-exact) and
// cycle-level (greedy scheduler) simulator backends.
func BenchmarkE12BackendAblation(b *testing.B) {
	kernels := [][]string{
		{"add GPR[32], GPR[32]", "add GPR[32], GPR[32]", "vpor XMM, XMM, XMM"},
		{"vpslld XMM, XMM, XMM", "vpor XMM, XMM, XMM", "vpaddd XMM, XMM, XMM"},
	}
	for _, backend := range []zensim.Backend{zensim.Analytic, zensim.Cycle} {
		name := "analytic"
		if backend == zensim.Cycle {
			name = "cycle"
		}
		b.Run(name, func(b *testing.B) {
			m := zenport.NewZenMachine(benchDB, zenport.SimConfig{Noise: -1, Backend: backend})
			for i := 0; i < b.N; i++ {
				for _, k := range kernels {
					if _, err := m.Execute(k, 10); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE13EpsilonAblation runs the blocking-instruction CEGAR at
// three ε settings (DESIGN.md E13), reporting the rounds needed.
func BenchmarkE13EpsilonAblation(b *testing.B) {
	for _, epsName := range []struct {
		name string
		eps  float64
	}{{"eps0.01", 0.01}, {"eps0.02", 0.02}, {"eps0.05", 0.05}} {
		b.Run(epsName.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := benchHarness(11)
				opts := zenport.DefaultOptions()
				opts.Epsilon = epsName.eps
				rep, err := zenport.Infer(h, benchSchemes(blockerKeys), opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.CEGARRounds), "cegar-rounds")
			}
		})
	}
}

// BenchmarkSATSolver measures the CDCL solver on PHP(8,7).
func BenchmarkSATSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver()
		const pigeons, holes = 8, 7
		var x [pigeons][holes]int
		for p := 0; p < pigeons; p++ {
			for h := 0; h < holes; h++ {
				x[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			cl := make([]sat.Lit, holes)
			for h := 0; h < holes; h++ {
				cl[h] = sat.NewLit(x[p][h], false)
			}
			if err := s.AddClause(cl...); err != nil {
				b.Fatal(err)
			}
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					if err := s.AddClause(sat.NewLit(x[p1][h], true), sat.NewLit(x[p2][h], true)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		if r := s.Solve(); r != sat.Unsat {
			b.Fatalf("PHP(8,7) = %v", r)
		}
	}
}

// BenchmarkLPSolver measures the simplex solver on the throughput LP
// of a 10-port mapping.
func BenchmarkLPSolver(b *testing.B) {
	truth := benchDB.Truth()
	e := portmodel.Experiment{
		"add GPR[32], GPR[32]": 4,
		"vpor XMM, XMM, XMM":   4,
		"mov GPR[32], MEM[32]": 2,
		"add MEM[32], GPR[32]": 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.InverseThroughput(truth, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimExecute measures one simulated kernel execution.
func BenchmarkSimExecute(b *testing.B) {
	m := zenport.NewZenMachine(benchDB, zenport.SimConfig{Noise: -1})
	kernel := []string{
		"add GPR[32], GPR[32]", "vpor XMM, XMM, XMM", "mov GPR[32], MEM[32]",
		"vpaddd XMM, XMM, XMM", "add GPR[32], MEM[32]",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Execute(kernel, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolioSolve measures the portfolio CDCL layer across
// member counts K on a CEGAR solve sequence: FindMapping plus
// FindOtherMapping refinement down to the final uniqueness proof. The
// uniqueness proof (a forced-nil FindOtherMapping) is where scouts can
// legally short-circuit the query, so it dominates the win; results
// are byte-identical at every K (see TestPipelinePortfolioInvariance).
func BenchmarkPortfolioSolve(b *testing.B) {
	// Six-port ground truth with overlapping port sets, so the
	// refinement genuinely iterates before the mapping is pinned.
	truth := zenport.NewMapping(6)
	truth.Set("add", zenport.Usage{{Ports: zenport.MakePortSet(0, 1, 2, 3), Count: 1}})
	truth.Set("mul", zenport.Usage{{Ports: zenport.MakePortSet(0, 1), Count: 1}})
	truth.Set("shl", zenport.Usage{{Ports: zenport.MakePortSet(2), Count: 1}})
	truth.Set("div", zenport.Usage{{Ports: zenport.MakePortSet(3), Count: 1}})
	truth.Set("ld", zenport.Usage{{Ports: zenport.MakePortSet(4, 5), Count: 1}})
	truth.Set("st", zenport.Usage{{Ports: zenport.MakePortSet(4), Count: 1}})
	specs := []zenport.UopSpec{
		{Key: "add", NumPorts: 4}, {Key: "mul", NumPorts: 2},
		{Key: "shl", NumPorts: 1}, {Key: "div", NumPorts: 1},
		{Key: "ld", NumPorts: 2}, {Key: "st", NumPorts: 1},
	}
	seed := func() []zenport.MeasuredExp {
		var exps []zenport.MeasuredExp
		for _, sp := range specs {
			ti, err := truth.InverseThroughputBounded(zenport.Exp(sp.Key), 5)
			if err != nil {
				b.Fatal(err)
			}
			exps = append(exps, zenport.MeasuredExp{Exp: zenport.Exp(sp.Key), TInv: ti})
		}
		return exps
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cegar/K=%d", k), func(b *testing.B) {
			stats := &zenport.QueryStats{}
			for i := 0; i < b.N; i++ {
				in := &zenport.Instance{
					NumPorts: 6, Rmax: 5, Epsilon: 0.02, Uops: specs,
					Telemetry: stats,
				}
				if k >= 2 {
					in.Portfolio = &zenport.PortfolioOptions{K: k}
				}
				exps := seed()
				rounds := 0
				for {
					m1, err := in.FindMapping(exps)
					if err != nil {
						b.Fatal(err)
					}
					// maxTotal stays within Rmax so the theory's bounded
					// evaluator agrees exactly with the truth measurement.
					other, err := in.FindOtherMapping(exps, m1, 3, 5, 200)
					if err != nil {
						b.Fatal(err)
					}
					rounds++
					if other == nil {
						break
					}
					tm, err := truth.InverseThroughputBounded(other.Exp, 5)
					if err != nil {
						b.Fatal(err)
					}
					exps = append(exps, zenport.MeasuredExp{Exp: other.Exp, TInv: tm})
				}
				b.ReportMetric(float64(rounds), "cegar-rounds")
				b.ReportMetric(float64(len(exps)), "experiments")
			}
			if pf := stats.Portfolio; pf != nil && pf.Queries > 0 {
				b.ReportMetric(float64(pf.ShortCircuits)/float64(b.N), "short-circuits")
				b.ReportMetric(float64(pf.Wins[0])/float64(pf.Queries), "member0-win-rate")
				b.ReportMetric(float64(pf.LemmasImported)/float64(b.N), "lemmas-imported")
			}
		})
	}

	// The uniqueness group isolates the query class where scouts are
	// allowed to decide: a forced-nil FindOtherMapping over a dense
	// mapping with unknown cardinalities. Member 0's default negative
	// polarity proposes sparse port sets that all violate the dense
	// measurements, while the positive-polarity scout walks straight to
	// the models — with fine-grained rounds it proves exhaustion first
	// and short-circuits (see member0-win-rate < 1 in the output).
	denseTruth := zenport.NewMapping(6)
	denseTruth.Set("a", zenport.Usage{{Ports: zenport.MakePortSet(0, 1, 2, 3, 4), Count: 1}})
	denseTruth.Set("b", zenport.Usage{{Ports: zenport.MakePortSet(1, 2, 3, 4, 5), Count: 1}})
	denseTruth.Set("c", zenport.Usage{{Ports: zenport.MakePortSet(0, 2, 3, 4, 5), Count: 1}})
	denseTruth.Set("d", zenport.Usage{{Ports: zenport.MakePortSet(0, 1, 3, 4, 5), Count: 1}})
	denseTruth.Set("e", zenport.Usage{{Ports: zenport.MakePortSet(0, 1, 2, 4, 5), Count: 1}})
	denseSpecs := []zenport.UopSpec{{Key: "a"}, {Key: "b"}, {Key: "c"}, {Key: "d"}, {Key: "e"}}
	var denseExps []zenport.MeasuredExp
	for _, sp := range denseSpecs {
		ti, err := denseTruth.InverseThroughputBounded(zenport.Exp(sp.Key), 5)
		if err != nil {
			b.Fatal(err)
		}
		denseExps = append(denseExps, zenport.MeasuredExp{Exp: zenport.Exp(sp.Key), TInv: ti})
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("uniqueness/K=%d", k), func(b *testing.B) {
			stats := &zenport.QueryStats{}
			for i := 0; i < b.N; i++ {
				in := &zenport.Instance{
					NumPorts: 6, Rmax: 5, Epsilon: 0.02, Uops: denseSpecs,
					Telemetry: stats,
				}
				if k >= 2 {
					in.Portfolio = &zenport.PortfolioOptions{
						K: k, RoundConflicts: 128, RoundIterations: 4,
					}
				}
				m1, err := in.FindMapping(denseExps)
				if err != nil {
					b.Fatal(err)
				}
				other, err := in.FindOtherMapping(denseExps, m1, 3, 5, 800)
				if err != nil {
					b.Fatal(err)
				}
				if other != nil {
					b.Fatal("uniqueness proof expected nil")
				}
			}
			if pf := stats.Portfolio; pf != nil && pf.Queries > 0 {
				b.ReportMetric(float64(pf.ShortCircuits)/float64(b.N), "short-circuits")
				b.ReportMetric(float64(pf.Wins[0])/float64(pf.Queries), "member0-win-rate")
			}
		})
	}
}

// BenchmarkEngineParallelSweep measures batch measurement throughput
// of the engine at several worker-pool sizes against the sequential
// baseline (workers=1). On multi-core hosts the simulated Execute
// calls scale near-linearly until GOMAXPROCS; results stay
// bit-identical at every setting (see TestPipelineWorkerCountInvariance).
func BenchmarkEngineParallelSweep(b *testing.B) {
	// The stage-4-shaped grid: every pipeline key floods every
	// blocker, plus the flood-only kernels.
	var exps []zenport.Experiment
	for _, key := range pipelineKeys {
		for _, blocker := range blockerKeys {
			if key == blocker {
				continue
			}
			exps = append(exps,
				zenport.Experiment{blocker: 8},
				zenport.Experiment{blocker: 8, key: 1})
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Fresh harness per iteration: a warm cache would
				// answer everything without touching the pool.
				h := benchHarness(2600)
				h.Workers = workers
				b.StartTimer()
				if _, err := h.MeasureBatch(context.Background(), exps); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(exps)), "experiments")
		})
	}
}
