// Package zenport is a Go implementation of "Explainable Port Mapping
// Inference with Sparse Performance Counters for AMD's Zen
// Architectures" (Ritter & Hack, ASPLOS 2024).
//
// It provides:
//
//   - the formal port mapping model with exact steady-state
//     throughput semantics (Mapping, Experiment, Usage);
//   - a simulated AMD Zen+ machine with the paper's documented
//     counter quirks and performance anomalies (NewZenMachine), which
//     substitutes for the Ryzen 5 2600X test system of the case
//     study;
//   - a nanoBench-style measurement harness (NewHarness);
//   - the paper's four-stage inference pipeline (Infer), producing a
//     port mapping with witness experiments and no per-port µop
//     counters;
//   - the solver-level findMapping/findOtherMapping queries
//     (NewInstance) for custom counter-example-guided loops;
//   - the comparison baselines of Section 4.5 (subpackages of
//     internal/baseline, surfaced through cmd/zeneval).
//
// See examples/quickstart for a guided tour and DESIGN.md for the
// full system inventory.
package zenport

import (
	"context"

	"zenport/internal/chaos"
	"zenport/internal/core"
	"zenport/internal/engine"
	"zenport/internal/isa"
	"zenport/internal/measure"
	"zenport/internal/persist"
	"zenport/internal/portmodel"
	"zenport/internal/sat"
	"zenport/internal/serve"
	"zenport/internal/shard"
	"zenport/internal/smt"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

// Re-exported model types.
type (
	// PortSet is a bitmask of execution ports.
	PortSet = portmodel.PortSet
	// Uop is a µop kind: admissible ports and multiplicity.
	Uop = portmodel.Uop
	// Usage is an instruction's µop decomposition.
	Usage = portmodel.Usage
	// Mapping is a port mapping over instruction scheme keys.
	Mapping = portmodel.Mapping
	// Experiment is a dependency-free instruction multiset.
	Experiment = portmodel.Experiment
	// CompiledMapping is a mapping compiled for repeated throughput
	// evaluation: scheme keys interned to dense indices, µops packed
	// flat, zero steady-state allocations per query. Results are
	// bit-identical to the Mapping methods.
	CompiledMapping = portmodel.Compiled

	// Scheme is an x86-64 instruction scheme.
	Scheme = isa.Scheme

	// Harness is the measurement harness (median-of-11, ε-equality).
	Harness = measure.Harness
	// Processor abstracts a machine under measurement.
	Processor = measure.Processor
	// Counters are raw performance-counter readings.
	Counters = measure.Counters
	// Engine is the batch measurement engine: worker pool,
	// canonical-key cache, in-flight deduplication, bounded retry,
	// and cancellation.
	Engine = engine.Engine
	// EngineMetrics is a snapshot of the engine's counters.
	EngineMetrics = engine.Metrics
	// MeasureResult is a processed measurement for one experiment.
	MeasureResult = engine.Result
	// Quality is the confidence record of one measurement (kept and
	// rejected samples, robust spread, low-confidence flag).
	Quality = engine.Quality

	// ChaosRegime configures deterministic fault injection.
	ChaosRegime = chaos.Regime
	// ChaosProcessor wraps a Processor in a seeded fault regime.
	ChaosProcessor = chaos.Processor
	// ChaosLedger counts injected faults per class.
	ChaosLedger = chaos.Ledger

	// SimConfig configures the simulated Zen+ machine.
	SimConfig = zensim.Config
	// Machine is the simulated Zen+ processor.
	Machine = zensim.Machine

	// Options tunes the inference pipeline.
	Options = core.Options
	// Report is the full pipeline output (funnel, Table 1 classes,
	// Table 2 mapping, witnesses, final mapping).
	Report = core.Report
	// Witness is one explanatory microbenchmark.
	Witness = core.Witness
	// BlockClass is a blocking-instruction equivalence class.
	BlockClass = core.BlockClass
	// DegradedMeasurement is one low-confidence measurement the
	// pipeline proceeded with.
	DegradedMeasurement = core.DegradedMeasurement

	// Instance is a findMapping/findOtherMapping problem.
	Instance = smt.Instance
	// UopSpec declares one µop of an Instance.
	UopSpec = smt.UopSpec
	// MeasuredExp pairs an experiment with its measured inverse
	// throughput.
	MeasuredExp = smt.MeasuredExp

	// SolverBudget bounds one CDCL solver query (conflicts,
	// propagations, decisions, wall deadline); the zero value is
	// unlimited. Set Options.SolverBudget to supervise the pipeline's
	// queries.
	SolverBudget = sat.Budget
	// SolverStats is a snapshot of the CDCL solver's work counters.
	SolverStats = sat.Stats
	// QueryStats aggregates solver telemetry across the theory-solver
	// queries of a pipeline run or Instance.
	QueryStats = smt.QueryStats
	// PortfolioOptions configures deterministic parallel portfolio
	// solving on an Instance (Options.Portfolio wires it for
	// pipeline runs).
	PortfolioOptions = smt.PortfolioOptions
	// PortfolioStats is the portfolio slice of QueryStats: rounds,
	// per-member wins, short-circuits, and lemma-exchange counters.
	PortfolioStats = smt.PortfolioStats
	// Relaxation records one error-bound relaxation performed by
	// UNSAT-core recovery on an inconsistent measurement.
	Relaxation = smt.Relaxation
	// SupervisionSummary is the run-level solver supervision report:
	// telemetry, extracted inconsistency cores, relaxations, and
	// budget stops.
	SupervisionSummary = core.SupervisionSummary

	// CacheStore is the crash-safe on-disk measurement cache
	// (append-only journal + atomic snapshot) attachable to an Engine.
	CacheStore = persist.Store
	// Checkpointer persists pipeline stage outcomes for -resume.
	Checkpointer = persist.Checkpointer
	// CacheLock is an exclusive advisory lock on a cache directory,
	// released automatically by the kernel if the process dies.
	CacheLock = persist.FileLock

	// ShardManifest pins a sharded campaign's configuration:
	// fingerprint, shard count, and the deterministic partition of the
	// scheme universe.
	ShardManifest = shard.Manifest
	// ShardConfig configures one shard process's campaign
	// participation (owner identity, home slice, work stealing).
	ShardConfig = shard.Config
	// ShardRun is the work order handed to a shard's pipeline
	// callback: one owned slice, its writer epoch, and the stage-4
	// filter.
	ShardRun = shard.SliceRun
	// ShardOutcome is what the pipeline callback returns for a
	// completed slice.
	ShardOutcome = shard.Outcome
	// ShardStatus summarizes a shard process's run: completed, stolen,
	// and observed slices.
	ShardStatus = shard.Status
	// ShardMergeReport is the outcome of merging a campaign directory.
	ShardMergeReport = shard.MergeReport

	// MappingServer is the HTTP/JSON handler serving loaded port
	// mappings: throughput predictions bit-identical to the batch
	// evaluator, per-scheme explanations with bottleneck witnesses, and
	// mapping diffs. cmd/zenportd is a thin wrapper around it.
	MappingServer = serve.Server
	// MappingServerConfig tunes a MappingServer (rmax, prediction LRU
	// size, request body cap, evaluator memo cap, admission gate,
	// deadlines, breaker).
	MappingServerConfig = serve.Config
	// ReloadResult reports a completed hot mapping reload (generation,
	// content fingerprint, whether the prediction cache was retained).
	ReloadResult = serve.ReloadResult
	// ServeFaultRegime configures deterministic serving-fault injection
	// (evaluator stalls and panics) for chaos soaks of the daemon.
	ServeFaultRegime = chaos.ServeRegime
	// ServeFaults injects a ServeFaultRegime via
	// MappingServerConfig.EvalHook.
	ServeFaults = chaos.ServeFaults
)

// MakePortSet builds a PortSet from port indices.
func MakePortSet(ports ...int) PortSet { return portmodel.MakePortSet(ports...) }

// NewMapping creates an empty mapping over numPorts ports.
func NewMapping(numPorts int) *Mapping { return portmodel.NewMapping(numPorts) }

// Exp builds an experiment from instruction keys (repetitions allowed).
func Exp(keys ...string) Experiment { return portmodel.Exp(keys...) }

// CompileMapping compiles a mapping for repeated throughput queries
// (predictions over many blocks, model-vs-model sweeps). The universe
// fixes the scheme-index order; nil uses the mapping's sorted keys.
// Compile once, query many times: the compiled evaluator answers
// InverseThroughput/IPC with zero steady-state allocations and
// bit-identical results to the Mapping methods.
func CompileMapping(m *Mapping, universe []string) (*CompiledMapping, error) {
	return portmodel.CompileMapping(m, universe)
}

// NewMappingServer returns an http.Handler serving port mappings.
// Load every mapping before serving; handlers are then safe for
// concurrent use and answer with bits identical to the batch
// evaluator over the same mapping and rmax.
func NewMappingServer(cfg MappingServerConfig) *MappingServer { return serve.New(cfg) }

// ParseKernel parses the CLI kernel syntax "N*key; M*key" (the format
// zenmap -predict and the serving API accept) into an experiment.
func ParseKernel(s string) (Experiment, error) { return serve.ParseKernel(s) }

// NewServeFaults returns a serving-fault injector for the regime;
// plug its Eval method into MappingServerConfig.EvalHook.
func NewServeFaults(regime ServeFaultRegime) *ServeFaults { return chaos.NewServeFaults(regime) }

// DefaultServeFaultRegime is the serve-chaos soak's regime: frequent
// short evaluator stalls plus one deterministic panic.
func DefaultServeFaultRegime(seed int64) ServeFaultRegime { return chaos.DefaultServeRegime(seed) }

// ZenDB builds the Zen+ instruction scheme database with ground
// truth (1,100+ schemes).
func ZenDB() *zen.DB { return zen.Build() }

// ZenSchemes returns the isa.Scheme list of the Zen+ database, the
// input to Infer.
func ZenSchemes(db *zen.DB) []Scheme {
	specs := db.Specs()
	out := make([]Scheme, 0, len(specs))
	for _, sp := range specs {
		out = append(out, sp.Scheme)
	}
	return out
}

// NewZenMachine builds a simulated Zen+ processor over the database.
func NewZenMachine(db *zen.DB, cfg SimConfig) *Machine { return zensim.NewMachine(db, cfg) }

// NewHarness builds a measurement harness with the paper's
// parameters (11 repetitions, ε = 0.02 CPI).
func NewHarness(p Processor) *Harness { return measure.NewHarness(p) }

// NewEngine builds a batch measurement engine with the paper's
// parameters and a GOMAXPROCS-sized worker pool.
func NewEngine(p Processor) *Engine { return engine.New(p) }

// DefaultOptions returns the paper's pipeline parameters.
func DefaultOptions() Options { return core.DefaultOptions() }

// Fingerprinter identifies a measurement-relevant configuration: the
// simulated machine and the chaos wrapper both implement it.
type Fingerprinter interface{ Fingerprint() string }

// RunFingerprint identifies a (processor, engine) measurement
// configuration for the persistence layer. Persisted measurements and
// checkpoints written under a different fingerprint are stale and are
// invalidated rather than reused. The worker count is deliberately
// not part of the fingerprint: results are byte-identical at every
// worker count. Pass the outermost processor (the chaos wrapper when
// fault injection is on): corrupted measurements must never be served
// to a fault-free run.
func RunFingerprint(p Fingerprinter, eng *Engine) string {
	return p.Fingerprint() + "|" + eng.Fingerprint()
}

// WrapChaos wraps a processor in a deterministic, seeded fault-
// injection regime. The wrapped processor derives a fault plan per
// (seed, kernel, execution index), so injected faults are reproducible
// at any worker count and across kill-and-resume.
func WrapChaos(p Processor, seed int64, regime ChaosRegime) *ChaosProcessor {
	return chaos.New(p, seed, regime)
}

// DefaultChaosRegime is the documented soak regime: ≈2% transient
// errors, rare short hangs, 1% 10× outlier spikes, 0.5% stuck
// counters.
func DefaultChaosRegime() ChaosRegime { return chaos.DefaultRegime() }

// OpenCache opens (or creates) a crash-safe measurement cache
// directory under the given configuration fingerprint.
func OpenCache(dir, fingerprint string) (*CacheStore, error) {
	return persist.Open(dir, fingerprint)
}

// NewCheckpointer returns a stage checkpointer rooted inside the
// cache directory.
func NewCheckpointer(dir, fingerprint string) (*Checkpointer, error) {
	return persist.NewCheckpointer(dir, fingerprint)
}

// OpenCacheEpoch is OpenCache under an explicit writer epoch: each
// lease takeover of a campaign slice opens the slice's store under a
// fresh epoch, so a displaced-but-alive predecessor can never corrupt
// the new owner's journal. Recovery merges all epochs.
func OpenCacheEpoch(dir, fingerprint string, epoch uint64) (*CacheStore, error) {
	return persist.OpenEpoch(dir, fingerprint, epoch)
}

// LockCacheDir takes the exclusive advisory lock of a cache directory
// (creating it if needed). A second process opening the same directory
// fails fast with a diagnostic instead of interleaving journal writes.
// Sharded campaign slices are coordinated by leases instead and do not
// take this lock.
func LockCacheDir(dir string) (*CacheLock, error) {
	return persist.LockDir(dir)
}

// EnsureShardManifest creates — or validates against — the manifest of
// a sharded campaign directory: the deterministic partition of the
// scheme-key universe into one slice per shard, pinned to the run
// fingerprint. Concurrent shard processes racing to create it agree on
// exactly one partition.
func EnsureShardManifest(dir, fingerprint string, shards int, universe []string) (*ShardManifest, error) {
	return shard.EnsureManifest(dir, fingerprint, shards, universe)
}

// ShardSliceDir returns the directory of slice i under a campaign root.
func ShardSliceDir(dir string, i int) string { return shard.SliceDir(dir, i) }

// RunShard participates in a sharded campaign until this shard's work
// is done: its own slice first, then — with cfg.Steal — dead or hung
// peers' slices via crash-tolerant lease takeover, until every slice
// has a result.
func RunShard(ctx context.Context, cfg ShardConfig) (*ShardStatus, error) {
	return shard.Run(ctx, cfg)
}

// MergeShards validates fingerprints across a campaign's slice results
// and persisted journals and merges them into one mapping and one
// compacted snapshot at the campaign root. Slices that never reported
// degrade the merge (their schemes are flagged unresolved) instead of
// failing it. Callers must hold LockCacheDir on the campaign root.
func MergeShards(dir, fingerprint string) (*ShardMergeReport, error) {
	return shard.Merge(dir, fingerprint)
}

// ErrBudgetExhausted reports that a solver query stopped because its
// SolverBudget ran out. The pipeline handles it internally by
// degrading; it surfaces only from direct Instance queries.
var ErrBudgetExhausted = sat.ErrBudgetExhausted

// Infer runs the full four-stage inference pipeline of the paper
// over the given schemes, measuring through the harness.
func Infer(h *Harness, schemes []Scheme, opts Options) (*Report, error) {
	return core.NewPipeline(h, schemes, opts).Run()
}

// InferContext is Infer with cancellation: measurement batches and
// solver queries stop promptly when ctx fires, and the error wraps
// ctx.Err().
func InferContext(ctx context.Context, h *Harness, schemes []Scheme, opts Options) (*Report, error) {
	return core.NewPipeline(h, schemes, opts).RunContext(ctx)
}
